// Parallel execution pipeline tests: the ordering/execution split must be
// invisible in replicated state.
//
// Three layers of evidence, mirroring how the pipeline is composed:
//
//   * direct drive: a GraphExecutor emitting straight into an ExecPool
//     (ReadySink seam) over a LanedStore — per-command results and the final
//     digest must match inline application of the same emission order, at
//     every lane count, including an all-one-key conflict storm that degrades
//     the pool to sequential;
//   * whole cluster: 3-node loopback TCP with thread-per-shard workers and
//     executor pools (P=4, E in {1,2,4}) must converge to byte-identical
//     per-(node, shard) digests and applied counts as the single-threaded
//     simulator reference — for Atlas, EPaxos and Mencius;
//   * crash drill: killing one executor lane mid-run must not wedge its shard
//     worker, its node, or the cluster; commands on surviving lanes keep
//     completing everywhere and shutdown joins cleanly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/exec_pool.h"
#include "src/exec/graph_executor.h"
#include "src/exec/laned_store.h"
#include "src/kvs/kvs.h"
#include "src/rt/node.h"
#include "src/sim/simulator.h"
#include "src/smr/deployment.h"

namespace exec {
namespace {

// ---------------------------------------------------------------------------
// Direct drive: GraphExecutor -> ReadySink -> ExecPool over a LanedStore.
// ---------------------------------------------------------------------------

struct DirectResult {
  uint64_t digest = 0;
  std::map<uint64_t, std::string> replies;  // seq -> value (seqs unique)
};

// Emits `cmds` in order through a GraphExecutor (empty deps: emission order ==
// commit order) into an ExecPool with `lanes` workers; waits for quiescence.
DirectResult RunPooled(const std::vector<smr::Command>& cmds, uint32_t lanes) {
  DirectResult res;
  LanedStore store(lanes);
  ExecPool::Options po;
  po.lanes = lanes;
  po.mailbox_capacity = 64;  // small rings: exercise the backpressure path
  po.on_completion = [&res](uint64_t client, uint64_t seq, std::string&& value) {
    (void)client;
    res.replies[seq] = std::move(value);
  };
  ExecPool pool(&store, po);
  GraphExecutor executor(BatchOrder::kDot, &pool);
  pool.Start();
  uint64_t seq = 0;
  for (const smr::Command& cmd : cmds) {
    executor.Commit(common::Dot{0, ++seq}, cmd, common::DepSet());
  }
  pool.WaitIdle();
  pool.Stop();
  res.digest = store.StateDigest();
  return res;
}

// Inline reference: same commands, flat store, sequential.
DirectResult RunInline(const std::vector<smr::Command>& cmds) {
  DirectResult res;
  kvs::KvStore store;
  for (const smr::Command& cmd : cmds) {
    std::string value = store.Apply(cmd);
    if (cmd.client != 0) {
      res.replies[cmd.seq] = std::move(value);
    }
  }
  res.digest = store.StateDigest();
  return res;
}

// No convenience constructors exist for the multi-key ops; build them by hand.
smr::Command MakeMPutCmd(uint64_t client, uint64_t seq, std::string key,
                         std::vector<std::string> more, std::string value) {
  smr::Command c;
  c.client = client;
  c.seq = seq;
  c.op = smr::Op::kMPut;
  c.key = std::move(key);
  c.more_keys = std::move(more);
  c.value = std::move(value);
  return c;
}

smr::Command MakeScanCmd(uint64_t client, uint64_t seq, std::string key,
                         std::vector<std::string> more) {
  smr::Command c;
  c.client = client;
  c.seq = seq;
  c.op = smr::Op::kScan;
  c.key = std::move(key);
  c.more_keys = std::move(more);
  return c;
}

std::vector<smr::Command> MixedWorkload(size_t n, uint32_t key_space,
                                        uint32_t hot_percent) {
  std::vector<smr::Command> cmds;
  uint64_t rng = 88172645463325252ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (uint64_t i = 1; i <= n; i++) {
    uint64_t r = next();
    std::string key = (r % 100) < hot_percent
                          ? "hot"
                          : "k" + std::to_string(next() % key_space);
    std::string value = "v" + std::to_string(i);
    // kRmw returns the previous value: any reordering of same-key commands
    // would change some reply, so replies pin per-key order exactly.
    smr::Command cmd = (r % 3 == 0)
                           ? smr::MakeRmw(/*client=*/1, i, key, std::move(value))
                           : smr::MakePut(/*client=*/1, i, key, std::move(value));
    cmds.push_back(std::move(cmd));
  }
  return cmds;
}

TEST(ExecPoolTest, DirectDriveMatchesInlineAtEveryLaneCount) {
  std::vector<smr::Command> cmds = MixedWorkload(4000, 64, /*hot_percent=*/10);
  DirectResult ref = RunInline(cmds);
  for (uint32_t lanes : {1u, 2u, 4u}) {
    DirectResult got = RunPooled(cmds, lanes);
    EXPECT_EQ(got.digest, ref.digest) << "digest diverged at E=" << lanes;
    EXPECT_EQ(got.replies, ref.replies) << "a reply diverged at E=" << lanes;
  }
}

TEST(ExecPoolTest, ConflictStormSerializesOnOneLane) {
  // Every command hits one key: all 4 lanes but one idle, per-key order (and
  // thus every kRmw reply) must still match the sequential reference exactly.
  std::vector<smr::Command> cmds = MixedWorkload(4000, 1, /*hot_percent=*/100);
  DirectResult ref = RunInline(cmds);
  DirectResult got = RunPooled(cmds, 4);
  EXPECT_EQ(got.digest, ref.digest);
  EXPECT_EQ(got.replies, ref.replies);
}

TEST(ExecPoolTest, CrossLaneCommandsBarrierAndMatchInline) {
  // Multi-key commands spanning lanes (kMPut + kScan over 8 spread keys):
  // applied through the quiesce-and-decompose barrier, results must match the
  // flat store, and the barrier count must be visible.
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 8 && i < 1000; i++) {
    keys.push_back("s" + std::to_string(i));
  }
  std::vector<smr::Command> cmds = MixedWorkload(1000, 32, 0);
  uint64_t seq = 100000;
  for (int round = 0; round < 20; round++) {
    std::vector<std::string> more(keys.begin() + 1, keys.end());
    cmds.push_back(MakeMPutCmd(/*client=*/2, ++seq, keys[0], more,
                               "x" + std::to_string(round)));
    cmds.push_back(MakeScanCmd(/*client=*/2, ++seq, keys[0], more));
  }
  DirectResult ref = RunInline(cmds);

  LanedStore store(4);
  DirectResult got;
  ExecPool::Options po;
  po.lanes = 4;
  po.mailbox_capacity = 64;
  po.on_completion = [&got](uint64_t, uint64_t seq_done, std::string&& value) {
    got.replies[seq_done] = std::move(value);
  };
  ExecPool pool(&store, po);
  pool.Start();
  std::vector<smr::Command> scratch;
  for (const smr::Command& cmd : cmds) {
    pool.Execute(cmd, scratch);
  }
  pool.WaitIdle();
  pool.Stop();
  got.digest = store.StateDigest();

  EXPECT_EQ(got.digest, ref.digest);
  EXPECT_EQ(got.replies, ref.replies);
  EXPECT_GT(pool.cross_lane_barriers(), 0u);
}

TEST(ExecPoolTest, LanedStoreDigestEqualsFlatStoreDigest) {
  // The decomposition the whole pipeline rests on: XOR of lane digests equals
  // the flat digest bit for bit, at every lane count.
  std::vector<smr::Command> cmds = MixedWorkload(2000, 128, 5);
  kvs::KvStore flat;
  for (const smr::Command& cmd : cmds) {
    flat.Apply(cmd);
  }
  for (uint32_t lanes : {1u, 2u, 3u, 4u, 8u}) {
    LanedStore laned(lanes);
    for (const smr::Command& cmd : cmds) {
      laned.Apply(cmd);
    }
    EXPECT_EQ(laned.StateDigest(), flat.StateDigest()) << "E=" << lanes;
    size_t total = 0;
    for (uint32_t l = 0; l < lanes; l++) {
      total += static_cast<const kvs::KvStore&>(laned.lane_store(l)).size();
    }
    EXPECT_EQ(total, flat.size()) << "E=" << lanes;
  }
}

// ---------------------------------------------------------------------------
// Whole cluster: threaded TCP with executor pools vs simulator reference.
// ---------------------------------------------------------------------------

constexpr uint32_t kNodes = 3;
constexpr uint32_t kPartitions = 4;
constexpr uint64_t kClients = 4;
constexpr uint64_t kOpsPerClient = 16;

smr::DeploymentOptions MakeOptions(smr::Protocol protocol, bool threaded,
                                   size_t executor_threads) {
  smr::DeploymentOptions d;
  d.protocol = protocol;
  d.n = kNodes;
  d.f = 1;
  d.partitions = kPartitions;
  d.threaded = threaded;
  d.executor_threads = executor_threads;
  return d;
}

// Fixed script, client-owned keys (per-key order == client program order, so
// the cross-driver digest comparison is exact even for order-sensitive kRmw).
smr::Command ScriptedOp(uint64_t client, uint64_t i) {
  std::string key = "c" + std::to_string(client) + "-k" + std::to_string(i % 5);
  std::string value = "v" + std::to_string(i);
  return (i % 2 == 1) ? smr::MakePut(client, i, key, std::move(value))
                      : smr::MakeRmw(client, i, key, std::move(value));
}

struct ShardState {
  std::vector<uint64_t> digests;
  std::vector<uint64_t> counts;
};

ShardState SimulatorReference(smr::Protocol protocol, size_t executor_threads) {
  sim::Simulator::Options opts;
  opts.seed = 11;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(5 * common::kMillisecond,
                                                           common::kMillisecond),
                     opts);
  std::vector<std::unique_ptr<smr::Deployment>> replicas;
  for (uint32_t i = 0; i < kNodes; i++) {
    replicas.push_back(std::make_unique<smr::Deployment>(
        MakeOptions(protocol, /*threaded=*/false, executor_threads)));
    sim.AddEngine(&replicas[i]->engine());
  }
  sim.SetExecutedHandler([&](common::ProcessId p, const common::Dot& dot,
                             const smr::Command& cmd) {
    replicas[p]->ApplyExecuted(
        dot, cmd, [](uint32_t, const smr::Command&, std::string&&) {});
  });
  sim.Start();
  for (uint64_t c = 1; c <= kClients; c++) {
    for (uint64_t i = 1; i <= kOpsPerClient; i++) {
      sim.Submit(static_cast<common::ProcessId>(c % kNodes), ScriptedOp(c, i));
    }
  }
  sim.RunUntilIdle();

  ShardState st;
  for (uint32_t p = 0; p < kNodes; p++) {
    for (uint32_t s = 0; s < kPartitions; s++) {
      st.digests.push_back(replicas[p]->store(s).StateDigest());
      st.counts.push_back(replicas[p]->applied_count(s));
    }
  }
  return st;
}

void RunTcpCluster(smr::Protocol protocol, size_t executor_threads,
                   uint16_t port_base, ShardState* out) {
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base =
        static_cast<uint16_t>(port_base + attempt * 16 + (getpid() % 512));
    std::vector<rt::PeerAddress> addrs;
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs.push_back(
          rt::PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    std::vector<std::unique_ptr<rt::Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      replicas.push_back(std::make_unique<smr::Deployment>(
          MakeOptions(protocol, /*threaded=*/true, executor_threads)));
      nodes.push_back(std::make_unique<rt::Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;
    }
    std::vector<std::thread> node_threads;
    for (uint32_t i = 0; i < kNodes; i++) {
      node_threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> client_threads;
    for (uint64_t c = 1; c <= kClients; c++) {
      client_threads.emplace_back([&, c]() {
        rt::Client client("127.0.0.1", addrs[c % kNodes].port);
        bool connected = false;
        for (int i = 0; i < 200 && !connected; i++) {
          connected = client.Connect();
          if (!connected) {
            usleep(20 * 1000);
          }
        }
        if (!connected) {
          failures.fetch_add(1);
          return;
        }
        std::string result;
        for (uint64_t i = 1; i <= kOpsPerClient; i++) {
          if (!client.Call(ScriptedOp(c, i), &result)) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : client_threads) {
      t.join();
    }

    const uint64_t expected = kClients * kOpsPerClient;
    if (failures.load() == 0) {
      auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
      bool drained = false;
      while (!drained && std::chrono::steady_clock::now() < deadline) {
        drained = true;
        for (auto& node : nodes) {
          if (node->applied_ops() < expected) {
            drained = false;
            break;
          }
        }
        if (!drained) {
          usleep(10 * 1000);
        }
      }
    }
    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : node_threads) {
      t.join();
    }
    ASSERT_EQ(failures.load(), 0) << "client calls failed";
    for (auto& node : nodes) {
      EXPECT_EQ(node->applied_ops(), expected) << "node failed to drain";
    }
    for (uint32_t p = 0; p < kNodes; p++) {
      for (uint32_t s = 0; s < kPartitions; s++) {
        out->digests.push_back(replicas[p]->store(s).StateDigest());
        out->counts.push_back(replicas[p]->applied_count(s));
      }
    }
    return;
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

void ExpectParity(smr::Protocol protocol, uint16_t port_base) {
  // Inline (plain store) and laned (inline-over-lanes) simulator references
  // must agree — the store decomposition changes nothing single-threadedly.
  ShardState inline_ref = SimulatorReference(protocol, /*executor_threads=*/0);
  ShardState laned_ref = SimulatorReference(protocol, /*executor_threads=*/4);
  ASSERT_EQ(laned_ref.digests, inline_ref.digests);
  ASSERT_EQ(laned_ref.counts, inline_ref.counts);
  // Threaded runtime with executor pools at every lane count == the reference.
  uint16_t next_base = port_base;
  for (size_t threads : {1u, 2u, 4u}) {
    ShardState got;
    RunTcpCluster(protocol, threads, next_base, &got);
    next_base = static_cast<uint16_t>(next_base + 700);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    EXPECT_EQ(got.digests, inline_ref.digests)
        << "digest diverged at E=" << threads;
    EXPECT_EQ(got.counts, inline_ref.counts)
        << "applied counts diverged at E=" << threads;
  }
}

TEST(ExecParallelClusterTest, AtlasDigestParityAcrossExecutorThreads) {
  ExpectParity(smr::Protocol::kAtlas, 47000);
}

TEST(ExecParallelClusterTest, EPaxosDigestParityAcrossExecutorThreads) {
  ExpectParity(smr::Protocol::kEPaxos, 49200);
}

TEST(ExecParallelClusterTest, MenciusDigestParityAcrossExecutorThreads) {
  ExpectParity(smr::Protocol::kMencius, 51400);
}

// ---------------------------------------------------------------------------
// Crash drill: a dead executor lane must not wedge the shard, node or cluster.
// ---------------------------------------------------------------------------

TEST(ExecParallelClusterTest, CrashedExecutorLaneDoesNotWedgeNode) {
  constexpr size_t kLanes = 2;
  constexpr uint32_t kDeadLane = 1;
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base =
        static_cast<uint16_t>(53600 + attempt * 16 + (getpid() % 512));
    std::vector<rt::PeerAddress> addrs;
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs.push_back(
          rt::PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    std::vector<std::unique_ptr<rt::Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      replicas.push_back(std::make_unique<smr::Deployment>(
          MakeOptions(smr::Protocol::kAtlas, /*threaded=*/true, kLanes)));
      nodes.push_back(std::make_unique<rt::Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;
    }
    std::vector<std::thread> node_threads;
    for (uint32_t i = 0; i < kNodes; i++) {
      node_threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    // Keys that avoid the doomed lane (lane routing is the same stable hash on
    // every node), so post-crash commands apply — and count — everywhere.
    LanedStore router(kLanes);
    std::vector<std::string> live_keys;
    for (int i = 0; live_keys.size() < 8 && i < 10000; i++) {
      std::string k = "live" + std::to_string(i);
      if (router.LaneOfKey(k) != kDeadLane) {
        live_keys.push_back(k);
      }
    }

    bool connected = false;
    uint64_t phase1_ok = 0;
    uint64_t phase2_ok = 0;
    bool stop_one = false;
    bool stop_again = true;
    const uint64_t kPhaseOps = 8;
    auto drained_to = [&nodes](uint64_t target) {
      auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (std::chrono::steady_clock::now() < deadline) {
        bool ok = true;
        for (auto& node : nodes) {
          if (node->applied_ops() < target) {
            ok = false;
            break;
          }
        }
        if (ok) {
          return true;
        }
        usleep(10 * 1000);
      }
      return false;
    };
    bool drain1 = false;
    bool drain2 = false;
    {
      rt::Client client("127.0.0.1", addrs[1].port);
      for (int i = 0; i < 200 && !connected; i++) {
        connected = client.Connect();
        if (!connected) {
          usleep(20 * 1000);
        }
      }
      if (connected) {
        std::string result;
        // Phase 1: all lanes healthy.
        for (uint64_t i = 1; i <= kPhaseOps; i++) {
          if (client.Call(ScriptedOp(1, i), &result)) {
            phase1_ok++;
          }
        }
        drain1 = drained_to(kPhaseOps);

        // Kill lane kDeadLane of shard 0's pool on node 0. The shard worker,
        // its other lane, the node's I/O loop all stay up.
        stop_one = nodes[0]->shard_runtime()->StopOneExecutor(0, kDeadLane);
        stop_again = nodes[0]->shard_runtime()->StopOneExecutor(0, kDeadLane);

        // Phase 2: surviving-lane keys complete on every node.
        for (uint64_t i = 0; i < kPhaseOps; i++) {
          smr::Command cmd = smr::MakePut(
              2, i + 1, live_keys[i % live_keys.size()], "after-crash");
          if (client.Call(cmd, &result)) {
            phase2_ok++;
          }
        }
        drain2 = drained_to(kPhaseOps * 2);
      }
    }
    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : node_threads) {
      t.join();  // the clean-shutdown assertion: a wedged worker hangs here
    }
    ASSERT_TRUE(connected);
    ASSERT_GE(live_keys.size(), 8u);
    EXPECT_TRUE(stop_one) << "StopOneExecutor should stop a running lane";
    EXPECT_FALSE(stop_again) << "second StopOneExecutor must report dead lane";
    EXPECT_EQ(phase1_ok, kPhaseOps);
    EXPECT_TRUE(drain1) << "healthy phase failed to drain";
    EXPECT_EQ(phase2_ok, kPhaseOps);
    EXPECT_TRUE(drain2) << "post-crash phase failed to drain on all nodes";
    return;
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

}  // namespace
}  // namespace exec
