// Discrete-event simulator and WAN model tests.
#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/sim/regions.h"

namespace sim {
namespace {

using common::Dot;
using common::kMillisecond;
using common::kSecond;
using common::ProcessId;
using common::Time;

// An engine that records receptions and can echo messages back.
class EchoEngine final : public smr::Engine {
 public:
  void Submit(smr::Command cmd) override {
    // Broadcast the command to everyone as an MCommit (arbitrary carrier message).
    msg::MCommit m;
    m.cmd = std::move(cmd);
    m.dot = Dot{self_, ++seq_};
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, m);
      }
    }
  }

  void OnMessage(ProcessId from, const msg::Message& m) override {
    received.emplace_back(from, ctx_->Now());
  }

  void OnTimer(uint64_t token) override { timer_tokens.push_back(token); }

  smr::Context* context() { return ctx_; }

  std::vector<std::pair<ProcessId, Time>> received;
  std::vector<uint64_t> timer_tokens;

 private:
  uint64_t seq_ = 0;
};

TEST(SimulatorTest, DeliversWithConfiguredLatency) {
  Simulator::Options opts;
  opts.seed = 1;
  Simulator sim(std::make_unique<UniformLatency>(50 * kMillisecond, 0), opts);
  EchoEngine a, b, c;
  sim.AddEngine(&a);
  sim.AddEngine(&b);
  sim.AddEngine(&c);
  sim.Start();
  sim.Submit(0, smr::MakePut(1, 1, "k", "v"));
  sim.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 50 * kMillisecond);
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(sim.messages_delivered(), 2u);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator::Options opts;
    opts.seed = seed;
    Simulator sim(std::make_unique<UniformLatency>(10 * kMillisecond, 5 * kMillisecond),
                  opts);
    EchoEngine a, b, c;
    sim.AddEngine(&a);
    sim.AddEngine(&b);
    sim.AddEngine(&c);
    sim.Start();
    for (int i = 0; i < 20; i++) {
      sim.Submit(0, smr::MakePut(1, static_cast<uint64_t>(i) + 1, "k", "v"));
    }
    sim.RunUntilIdle();
    return b.received;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimulatorTest, CrashedProcessReceivesNothing) {
  Simulator::Options opts;
  Simulator sim(std::make_unique<UniformLatency>(10 * kMillisecond, 0), opts);
  EchoEngine a, b, c;
  sim.AddEngine(&a);
  sim.AddEngine(&b);
  sim.AddEngine(&c);
  sim.Start();
  sim.Crash(1);
  sim.Submit(0, smr::MakePut(1, 1, "k", "v"));
  sim.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(sim.messages_dropped(), 1u);
}

TEST(SimulatorTest, LinkFailureDropsMessages) {
  Simulator::Options opts;
  Simulator sim(std::make_unique<UniformLatency>(10 * kMillisecond, 0), opts);
  EchoEngine a, b, c;
  sim.AddEngine(&a);
  sim.AddEngine(&b);
  sim.AddEngine(&c);
  sim.Start();
  sim.SetLinkDown(0, 1, true);
  sim.Submit(0, smr::MakePut(1, 1, "k", "v"));
  sim.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  sim.SetLinkDown(0, 1, false);
  sim.Submit(0, smr::MakePut(1, 2, "k", "v"));
  sim.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimulatorTest, FifoLinksPreserveOrderUnderJitter) {
  Simulator::Options opts;
  opts.seed = 3;
  opts.fifo_links = true;
  Simulator sim(
      std::make_unique<UniformLatency>(10 * kMillisecond, 30 * kMillisecond), opts);
  EchoEngine a, b, c;
  sim.AddEngine(&a);
  sim.AddEngine(&b);
  sim.AddEngine(&c);
  sim.Start();
  for (int i = 0; i < 50; i++) {
    sim.Submit(0, smr::MakePut(1, static_cast<uint64_t>(i) + 1, "k", "v"));
  }
  sim.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 50u);
  for (size_t i = 1; i < b.received.size(); i++) {
    EXPECT_LE(b.received[i - 1].second, b.received[i].second);
  }
}

TEST(SimulatorTest, TimersFire) {
  Simulator::Options opts;
  Simulator sim(std::make_unique<UniformLatency>(kMillisecond, 0), opts);
  EchoEngine a, b, c;
  sim.AddEngine(&a);
  sim.AddEngine(&b);
  sim.AddEngine(&c);
  sim.Start();
  a.context()->SetTimer(100 * kMillisecond, 42);
  sim.RunUntilIdle();
  ASSERT_EQ(a.timer_tokens.size(), 1u);
  EXPECT_EQ(a.timer_tokens[0], 42u);
  EXPECT_EQ(sim.Now(), 100 * kMillisecond);
}

TEST(SimulatorTest, EgressModelSerializesTransmissions) {
  Simulator::Options opts;
  opts.egress_bytes_per_sec = 1000.0;  // 1 KB/s: very slow NIC
  Simulator sim(std::make_unique<UniformLatency>(0, 0), opts);
  EchoEngine a, b, c;
  sim.AddEngine(&a);
  sim.AddEngine(&b);
  sim.AddEngine(&c);
  sim.Start();
  sim.Submit(0, smr::MakePut(1, 1, "k", std::string(1000, 'x')));
  sim.RunUntilIdle();
  // Two copies (to b and c) of a ~1KB message at 1KB/s: second arrives ~1s after first.
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(c.received.size(), 1u);
  Time t1 = std::min(b.received[0].second, c.received[0].second);
  Time t2 = std::max(b.received[0].second, c.received[0].second);
  EXPECT_GT(t1, 900 * kMillisecond);
  EXPECT_GT(t2 - t1, 900 * kMillisecond);
}

TEST(RegionsTest, SeventeenRegionsWithPlausibleRtts) {
  const auto& regions = AllRegions();
  EXPECT_EQ(regions.size(), 17u);
  // Symmetry + plausibility checks.
  const Region& tw = regions[RegionIndexByLabel("TW")];
  const Region& fi = regions[RegionIndexByLabel("FI")];
  const Region& sc = regions[RegionIndexByLabel("SC")];
  EXPECT_EQ(ModeledRtt(tw, fi), ModeledRtt(fi, tw));
  // Taiwan <-> Finland is intercontinental: roughly 100-350ms.
  EXPECT_GT(ModeledRtt(tw, fi), 100 * kMillisecond);
  EXPECT_LT(ModeledRtt(tw, fi), 350 * kMillisecond);
  // Within Europe: under 60ms.
  const Region& be = regions[RegionIndexByLabel("BE")];
  const Region& ln = regions[RegionIndexByLabel("LN")];
  EXPECT_LT(ModeledRtt(be, ln), 60 * kMillisecond);
  EXPECT_GT(ModeledRtt(tw, sc), ModeledRtt(be, ln));
}

TEST(RegionsTest, ScaleOutSubsetsNested) {
  auto s3 = ScaleOutSites(3);
  auto s13 = ScaleOutSites(13);
  EXPECT_EQ(s3.size(), 3u);
  EXPECT_EQ(s13.size(), 13u);
  for (size_t i = 0; i < 3; i++) {
    EXPECT_EQ(s3[i], s13[i]);
  }
  // All distinct.
  auto sorted = s13;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

TEST(RegionsTest, OneWayMatrixConsistentWithRtt) {
  auto subset = ThreeSites();
  auto m = OneWayMatrix(subset);
  const auto& regions = AllRegions();
  for (size_t i = 0; i < 3; i++) {
    EXPECT_EQ(m[i][i], 0);
    for (size_t j = 0; j < 3; j++) {
      if (i != j) {
        EXPECT_EQ(m[i][j], ModeledRtt(regions[subset[i]], regions[subset[j]]) / 2);
      }
    }
  }
}

}  // namespace
}  // namespace sim
