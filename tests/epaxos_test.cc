// EPaxos baseline tests: quorum sizing, matching-reply fast-path rule, seq-ordered
// execution, consistency, NFR.
#include "src/epaxos/epaxos.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"

namespace epaxos {
namespace {

using common::Dot;
using common::kMillisecond;
using common::ProcessId;

TEST(EPaxosConfigTest, FastQuorumSizes) {
  // F + floor((F+1)/2) with F = floor((n-1)/2) — the ~3n/4-class quorum.
  struct Case {
    uint32_t n;
    size_t fq;
  };
  const Case cases[] = {{3, 2}, {5, 3}, {7, 5}, {9, 6}, {13, 9}};
  for (const auto& c : cases) {
    Config cfg;
    cfg.n = c.n;
    EXPECT_EQ(cfg.FastQuorumSize(), c.fq) << "n=" << c.n;
    EXPECT_GE(cfg.FastQuorumSize(), cfg.MajoritySize());
  }
}

struct TestCluster {
  explicit TestCluster(uint32_t n, bool nfr = false) {
    sim::Simulator::Options opts;
    opts.seed = 17;
    sim = std::make_unique<sim::Simulator>(
        std::make_unique<sim::UniformLatency>(10 * kMillisecond, 0), opts);
    for (uint32_t i = 0; i < n; i++) {
      Config cfg;
      cfg.n = n;
      cfg.nfr = nfr;
      engines.push_back(std::make_unique<EPaxosEngine>(cfg));
      sim->AddEngine(engines.back().get());
    }
    sim->SetExecutedHandler([this](ProcessId p, const Dot& d, const smr::Command& c) {
      executed.emplace_back(p, c);
    });
    sim->Start();
  }

  std::vector<std::pair<uint64_t, uint64_t>> OrderAt(ProcessId p) const {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (const auto& [proc, cmd] : executed) {
      if (proc == p && !cmd.is_noop()) {
        out.emplace_back(cmd.client, cmd.seq);
      }
    }
    return out;
  }

  uint64_t TotalFast() const {
    uint64_t v = 0;
    for (const auto& e : engines) {
      v += e->stats().fast_paths;
    }
    return v;
  }
  uint64_t TotalSlow() const {
    uint64_t v = 0;
    for (const auto& e : engines) {
      v += e->stats().slow_paths;
    }
    return v;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<EPaxosEngine>> engines;
  std::vector<std::pair<ProcessId, smr::Command>> executed;
};

TEST(EPaxosTest, NonConflictingGoesFast) {
  TestCluster tc(5);
  for (ProcessId p = 0; p < 5; p++) {
    tc.sim->Submit(p, smr::MakePut(p + 1, 1, "key" + std::to_string(p), "v"));
  }
  tc.sim->RunUntilIdle();
  EXPECT_EQ(tc.TotalFast(), 5u);
  EXPECT_EQ(tc.TotalSlow(), 0u);
  EXPECT_EQ(tc.executed.size(), 25u);
}

TEST(EPaxosTest, SequentialConflictingGoesFast) {
  // Conflicting but not concurrent: replies match (deps already settled everywhere).
  TestCluster tc(5);
  for (int i = 0; i < 5; i++) {
    tc.sim->Submit(0, smr::MakePut(1, static_cast<uint64_t>(i) + 1, "hot", "v"));
    tc.sim->RunUntilIdle();
  }
  EXPECT_EQ(tc.TotalFast(), 5u);
  EXPECT_EQ(tc.TotalSlow(), 0u);
}

TEST(EPaxosTest, ConcurrentConflictingForcesSlowPathUnlikeAtlas) {
  // Two conflicting commands submitted simultaneously at different replicas: the
  // fast-quorum replies cannot all match for both coordinators.
  TestCluster tc(5);
  tc.sim->Submit(0, smr::MakePut(1, 1, "hot", "v"));
  tc.sim->Submit(4, smr::MakePut(2, 1, "hot", "v"));
  tc.sim->RunUntilIdle();
  EXPECT_GE(tc.TotalSlow(), 1u);
  // Despite the conflict, execution order agrees everywhere.
  auto ref = tc.OrderAt(0);
  EXPECT_EQ(ref.size(), 2u);
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p), ref);
  }
}

TEST(EPaxosTest, HighContentionStaysConsistent) {
  TestCluster tc(5);
  for (ProcessId p = 0; p < 5; p++) {
    for (int i = 0; i < 20; i++) {
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1, "hot", "v"));
    }
  }
  tc.sim->RunUntilIdle();
  auto ref = tc.OrderAt(0);
  EXPECT_EQ(ref.size(), 100u);
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p), ref) << "replica " << p;
  }
}

TEST(EPaxosTest, MixedKeysConsistent) {
  TestCluster tc(7);
  for (ProcessId p = 0; p < 7; p++) {
    for (int i = 0; i < 10; i++) {
      std::string key = (i % 3 == 0) ? "hot" : "k" + std::to_string(p % 3);
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1, key, "v"));
    }
  }
  tc.sim->RunUntilIdle();
  EXPECT_EQ(tc.executed.size(), 70u * 7);
  auto ref = tc.OrderAt(0);
  for (ProcessId p = 1; p < 7; p++) {
    // Project onto each key and compare relative orders via full sequence equality on
    // conflicting-only workload subsets is complex; here all writes on same key
    // conflict, so compare per-key subsequences.
    for (const std::string& key : {std::string("hot"), std::string("k0"),
                                   std::string("k1"), std::string("k2")}) {
      std::vector<std::pair<uint64_t, uint64_t>> a, b;
      for (const auto& [proc, cmd] : tc.executed) {
        if (cmd.key != key) {
          continue;
        }
        if (proc == 0) {
          a.emplace_back(cmd.client, cmd.seq);
        } else if (proc == p) {
          b.emplace_back(cmd.client, cmd.seq);
        }
      }
      EXPECT_EQ(a, b) << "key " << key << " replica " << p;
    }
  }
}

TEST(EPaxosTest, NfrReadUsesMajorityAndSkipsDependencies) {
  TestCluster tc(7, /*nfr=*/true);
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  tc.sim->Submit(3, smr::MakeGet(2, 1, "k"));
  tc.sim->RunUntilIdle();
  // Read committed fast.
  EXPECT_EQ(tc.TotalSlow(), 0u);
  // A later write does not depend on the read: still fast even if concurrent with
  // nothing; then check execution everywhere.
  tc.sim->Submit(5, smr::MakePut(3, 1, "k", "v2"));
  tc.sim->RunUntilIdle();
  EXPECT_EQ(tc.executed.size(), 3u * 7);
}

}  // namespace
}  // namespace epaxos
