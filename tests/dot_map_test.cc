// DotMap: the open-addressed flat map behind the engines' per-command state.
// Exercises insert/find/erase/iteration directly, then cross-validates a long
// randomized operation sequence against std::unordered_map, with special attention
// to backward-shift deletion (the subtle part of tombstone-free open addressing).
#include "src/common/dot_map.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/common/rng.h"

namespace common {
namespace {

TEST(DotMapTest, InsertFindErase) {
  DotMap<uint64_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(Dot{1, 1}), nullptr);

  m[Dot{1, 1}] = 11;
  m[Dot{2, 7}] = 27;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.Find(Dot{1, 1}), nullptr);
  EXPECT_EQ(*m.Find(Dot{1, 1}), 11u);
  EXPECT_EQ(*m.Find(Dot{2, 7}), 27u);
  EXPECT_FALSE(m.Contains(Dot{3, 1}));

  // operator[] on an existing key returns the same entry.
  m[Dot{1, 1}] = 99;
  EXPECT_EQ(*m.Find(Dot{1, 1}), 99u);
  EXPECT_EQ(m.size(), 2u);

  EXPECT_TRUE(m.Erase(Dot{1, 1}));
  EXPECT_FALSE(m.Erase(Dot{1, 1}));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.Find(Dot{1, 1}), nullptr);
  EXPECT_EQ(*m.Find(Dot{2, 7}), 27u);
}

TEST(DotMapTest, GrowthKeepsAllEntries) {
  DotMap<uint64_t> m;
  for (uint64_t i = 1; i <= 10000; i++) {
    m[Dot{static_cast<ProcessId>(i % 5), i}] = i;
  }
  EXPECT_EQ(m.size(), 10000u);
  for (uint64_t i = 1; i <= 10000; i++) {
    auto* v = m.Find(Dot{static_cast<ProcessId>(i % 5), i});
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(DotMapTest, FifoEvictionPattern) {
  // The decided-cache pattern: insert in dot order, erase oldest when over limit.
  DotMap<uint64_t> m;
  const size_t kLimit = 512;
  uint64_t evict_next = 1;
  for (uint64_t i = 1; i <= 20000; i++) {
    m[Dot{0, i}] = i;
    if (m.size() > kLimit) {
      EXPECT_TRUE(m.Erase(Dot{0, evict_next++}));
    }
  }
  EXPECT_EQ(m.size(), kLimit);
  for (uint64_t i = evict_next; i <= 20000; i++) {
    ASSERT_TRUE(m.Contains(Dot{0, i})) << i;
  }
  EXPECT_FALSE(m.Contains(Dot{0, evict_next - 1}));
}

TEST(DotMapTest, ForEachVisitsExactlyOccupiedSlots) {
  DotMap<uint64_t> m;
  for (uint64_t i = 1; i <= 100; i++) {
    m[Dot{1, i}] = i;
  }
  for (uint64_t i = 1; i <= 100; i += 2) {
    m.Erase(Dot{1, i});
  }
  uint64_t count = 0;
  uint64_t sum = 0;
  m.ForEach([&](const Dot& d, const uint64_t& v) {
    count++;
    sum += v;
    EXPECT_EQ(d.seq % 2, 0u);
  });
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(sum, 2550u);  // 2 + 4 + ... + 100
}

TEST(DotMapTest, RandomizedAgainstUnorderedMap) {
  Rng rng(2024);
  DotMap<uint64_t> flat;
  std::unordered_map<Dot, uint64_t, DotHash> ref;
  std::vector<Dot> universe;
  for (uint64_t i = 0; i < 700; i++) {
    universe.push_back(Dot{static_cast<ProcessId>(rng.Below(7)), rng.Below(200)});
  }
  for (int step = 0; step < 200000; step++) {
    const Dot& d = universe[rng.Below(universe.size())];
    switch (rng.Below(4)) {
      case 0:
      case 1: {  // insert / overwrite
        uint64_t v = rng.Below(1u << 30);
        flat[d] = v;
        ref[d] = v;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.Erase(d), ref.erase(d) > 0);
        break;
      }
      default: {  // lookup
        auto* fv = flat.Find(d);
        auto it = ref.find(d);
        ASSERT_EQ(fv != nullptr, it != ref.end());
        if (fv != nullptr) {
          ASSERT_EQ(*fv, it->second);
        }
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Final full cross-check, both directions.
  uint64_t visited = 0;
  flat.ForEach([&](const Dot& d, const uint64_t& v) {
    auto it = ref.find(d);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
    visited++;
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(DotMapTest, ReserveAvoidsRehash) {
  DotMap<uint64_t> m;
  m.Reserve(1000);
  size_t cap = m.capacity();
  for (uint64_t i = 1; i <= 1000; i++) {
    m[Dot{0, i}] = i;
  }
  EXPECT_EQ(m.capacity(), cap);
}

}  // namespace
}  // namespace common
