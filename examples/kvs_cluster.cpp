// Real-runtime example: a 3-replica Atlas KVS over actual TCP sockets (localhost),
// exercised by a client issuing reads and writes — the same engines that run on the
// simulator, driven by the epoll runtime.
//
//   $ ./build/examples/kvs_cluster
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/core/atlas.h"
#include "src/kvs/kvs.h"
#include "src/rt/node.h"

int main() {
  constexpr uint32_t kReplicas = 3;
  const uint16_t base_port = static_cast<uint16_t>(39000 + (getpid() % 1000));

  std::vector<rt::PeerAddress> addrs;
  for (uint32_t i = 0; i < kReplicas; i++) {
    addrs.push_back(rt::PeerAddress{"127.0.0.1", static_cast<uint16_t>(base_port + i)});
  }

  std::vector<std::unique_ptr<atlas::AtlasEngine>> engines;
  std::vector<std::unique_ptr<kvs::KvStore>> stores;
  std::vector<std::unique_ptr<rt::Node>> nodes;
  for (uint32_t i = 0; i < kReplicas; i++) {
    atlas::Config config;
    config.n = kReplicas;
    config.f = 1;
    engines.push_back(std::make_unique<atlas::AtlasEngine>(config));
    stores.push_back(std::make_unique<kvs::KvStore>());
    nodes.push_back(
        std::make_unique<rt::Node>(i, addrs, engines[i].get(), stores[i].get()));
    if (!nodes.back()->Listen()) {
      std::fprintf(stderr, "failed to bind port %u\n", addrs[i].port);
      return 1;
    }
  }
  std::printf("3 ATLAS replicas listening on 127.0.0.1:%u..%u\n", base_port,
              base_port + kReplicas - 1);

  std::vector<std::thread> threads;
  for (uint32_t i = 0; i < kReplicas; i++) {
    threads.emplace_back([&, i]() { nodes[i]->Run(); });
  }

  // Clients talk to different replicas; SMR keeps them linearizable.
  rt::Client alice("127.0.0.1", addrs[0].port);
  rt::Client bob("127.0.0.1", addrs[2].port);
  for (int attempt = 0; attempt < 100 && !alice.Connect(); attempt++) {
    usleep(20 * 1000);
  }
  if (!bob.Connect()) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }

  std::string result;
  auto call = [&](rt::Client& c, const char* who, const smr::Command& cmd) {
    if (!c.Call(cmd, &result)) {
      std::fprintf(stderr, "%s: call failed\n", who);
      exit(1);
    }
    std::printf("  %s: %-22s -> \"%s\"\n", who, cmd.ToString().c_str(), result.c_str());
  };

  std::printf("\nalice (replica 0) and bob (replica 2):\n");
  call(alice, "alice", smr::MakePut(1, 1, "tea", "green"));
  call(bob, "bob  ", smr::MakeGet(2, 1, "tea"));       // sees alice's write
  call(bob, "bob  ", smr::MakeRmw(2, 2, "tea", "+milk"));
  call(alice, "alice", smr::MakeGet(1, 2, "tea"));     // sees bob's update

  for (auto& node : nodes) {
    node->Stop();
  }
  for (auto& t : threads) {
    t.join();
  }
  std::printf("\nreplica digests: %016llx %016llx %016llx\n",
              static_cast<unsigned long long>(stores[0]->StateDigest()),
              static_cast<unsigned long long>(stores[1]->StateDigest()),
              static_cast<unsigned long long>(stores[2]->StateDigest()));
  return 0;
}
