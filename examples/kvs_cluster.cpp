// Real-runtime example: a 3-replica Atlas KVS over actual TCP sockets (localhost),
// exercised by a client issuing reads and writes — the same replica assembly
// (smr::Deployment) that the simulator harness drives, run by the epoll runtime.
//
//   $ ./build/kvs_cluster                       # classic single-engine replicas
//   $ ./build/kvs_cluster --partitions 4        # 4 engines per node, key-space sharded
//   $ ./build/kvs_cluster --partitions 4 --batch-window-ms 5 --batch-max 32
//   $ ./build/kvs_cluster --partitions 4 --threads-per-node   # one worker thread
//                                               # per shard behind SPSC mailboxes
//   $ ./build/kvs_cluster --partitions 4 --threads-per-node --pin-cores
//   $ ./build/kvs_cluster --partitions 4 --threads-per-node --executor-threads 2
//                                               # + 2 execution lanes per shard
//                                               # applying commands in parallel
//   $ ./build/kvs_cluster --data-dir /tmp/kvs   # durable: per-shard commit log +
//                                               # snapshots under <dir>/site-N/;
//                                               # rerun with the same dir to
//                                               # recover the store from disk
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/rt/node.h"
#include "src/smr/deployment.h"

int main(int argc, char** argv) {
  constexpr uint32_t kReplicas = 3;
  uint32_t partitions = 1;
  uint64_t batch_window_ms = 0;
  size_t batch_max = 64;
  bool threaded = false;
  bool pin_cores = false;
  size_t executor_threads = 0;
  std::string data_dir;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch-window-ms") == 0 && i + 1 < argc) {
      batch_window_ms = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch-max") == 0 && i + 1 < argc) {
      batch_max = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads-per-node") == 0) {
      threaded = true;
    } else if (std::strcmp(argv[i], "--pin-cores") == 0) {
      pin_cores = true;
    } else if (std::strcmp(argv[i], "--executor-threads") == 0 && i + 1 < argc) {
      executor_threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--partitions N] [--batch-window-ms N] "
                   "[--batch-max N] [--threads-per-node] [--pin-cores] "
                   "[--executor-threads N] [--data-dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (pin_cores && !threaded) {
    std::fprintf(stderr, "--pin-cores requires --threads-per-node\n");
    return 2;
  }
  if (executor_threads > 0 && !threaded) {
    std::fprintf(stderr, "--executor-threads requires --threads-per-node\n");
    return 2;
  }
  if (partitions < 1 || partitions > smr::ShardedEngine::kMaxPartitions ||
      batch_max < 1) {
    std::fprintf(stderr, "--partitions must be 1..%u and --batch-max >= 1\n",
                 smr::ShardedEngine::kMaxPartitions);
    return 2;
  }

  const uint16_t base_port = static_cast<uint16_t>(39000 + (getpid() % 1000));
  std::vector<rt::PeerAddress> addrs;
  for (uint32_t i = 0; i < kReplicas; i++) {
    addrs.push_back(rt::PeerAddress{"127.0.0.1", static_cast<uint16_t>(base_port + i)});
  }

  // One Deployment per node: the same assembly layer the simulator harness uses,
  // so P>1 gives each node `partitions` independent Atlas engines with per-shard
  // stores and (optionally) submission batching — over real sockets.
  std::vector<std::unique_ptr<smr::Deployment>> replicas;
  std::vector<std::unique_ptr<rt::Node>> nodes;
  for (uint32_t i = 0; i < kReplicas; i++) {
    smr::DeploymentOptions d;
    d.protocol = smr::Protocol::kAtlas;
    d.n = kReplicas;
    d.f = 1;
    d.partitions = partitions;
    d.batch_window = batch_window_ms * common::kMillisecond;
    d.batch_max = batch_max;
    // Threaded runtime: each shard's engine runs on its own worker thread
    // behind SPSC mailboxes (--pin-cores additionally sets CPU affinity,
    // shard s -> core s % ncores). Single-driver epoll loop otherwise.
    d.threaded = threaded;
    d.pin_cores = pin_cores;
    // Parallel execution pipeline: each shard's store becomes a laned store
    // and an executor pool applies non-conflicting commands concurrently
    // (ordering stays on the shard worker; see src/exec/exec_pool.h).
    d.executor_threads = executor_threads;
    if (!data_dir.empty()) {
      // Durable replicas: every executed command is logged (batched fsync)
      // under <data_dir>/site-N/shard-M/ and snapshots bound replay length.
      // A rerun with the same --data-dir recovers the stores from disk before
      // joining the mesh.
      d.data_dir = data_dir + "/site-" + std::to_string(i);
    }
    replicas.push_back(std::make_unique<smr::Deployment>(std::move(d)));
    nodes.push_back(std::make_unique<rt::Node>(i, addrs, replicas[i].get()));
    if (!nodes.back()->Listen()) {
      std::fprintf(stderr, "failed to bind port %u\n", addrs[i].port);
      return 1;
    }
  }
  std::printf("3 ATLAS replicas (P=%u%s", partitions,
              threaded ? (pin_cores ? ", thread-per-shard, pinned"
                                    : ", thread-per-shard")
                       : "");
  if (executor_threads > 0) {
    std::printf(", %zu exec lanes/shard", executor_threads);
  }
  if (!data_dir.empty()) {
    std::printf(", durable in %s", data_dir.c_str());
  }
  std::printf(") listening on 127.0.0.1:%u..%u\n", base_port,
              base_port + kReplicas - 1);

  std::vector<std::thread> threads;
  for (uint32_t i = 0; i < kReplicas; i++) {
    threads.emplace_back([&, i]() { nodes[i]->Run(); });
  }

  // Clients talk to different replicas; SMR keeps them linearizable.
  rt::Client alice("127.0.0.1", addrs[0].port);
  rt::Client bob("127.0.0.1", addrs[2].port);
  for (int attempt = 0; attempt < 100 && !alice.Connect(); attempt++) {
    usleep(20 * 1000);
  }
  if (!bob.Connect()) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }

  std::string result;
  auto call = [&](rt::Client& c, const char* who, const smr::Command& cmd) {
    if (!c.Call(cmd, &result)) {
      std::fprintf(stderr, "%s: call failed\n", who);
      exit(1);
    }
    std::printf("  %s: %-22s -> \"%s\"\n", who, cmd.ToString().c_str(), result.c_str());
  };

  std::printf("\nalice (replica 0) and bob (replica 2):\n");
  call(alice, "alice", smr::MakePut(1, 1, "tea", "green"));
  call(bob, "bob  ", smr::MakeGet(2, 1, "tea"));       // sees alice's write
  call(bob, "bob  ", smr::MakeRmw(2, 2, "tea", "+milk"));
  call(alice, "alice", smr::MakeGet(1, 2, "tea"));     // sees bob's update
  // Hit a few more keys so sharded runs touch several partitions.
  call(alice, "alice", smr::MakePut(1, 3, "coffee", "black"));
  call(bob, "bob  ", smr::MakePut(2, 3, "juice", "orange"));
  call(alice, "alice", smr::MakeGet(1, 4, "juice"));

  for (auto& node : nodes) {
    node->Stop();
  }
  for (auto& t : threads) {
    t.join();
  }
  std::printf("\nper-(replica, shard) digests:\n");
  for (uint32_t i = 0; i < kReplicas; i++) {
    std::printf("  replica %u:", i);
    for (uint32_t s = 0; s < partitions; s++) {
      std::printf(" %016llx",
                  static_cast<unsigned long long>(replicas[i]->store(s).StateDigest()));
    }
    std::printf("\n");
  }
  return 0;
}
