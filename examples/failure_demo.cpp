// Failure & recovery demo: the §5.6 scenario as an interactive walk-through. Three
// sites (Taiwan, Finland, South Carolina); Taiwan crashes mid-load; Atlas recovers the
// in-flight commands of the failed coordinator and keeps serving.
//
//   $ ./build/examples/failure_demo
#include <cstdio>
#include <memory>

#include "src/harness/cluster.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

int main() {
  harness::ClusterOptions opts;
  opts.protocol = harness::Protocol::kAtlas;
  opts.f = 1;
  opts.site_regions = sim::ThreeSites();  // TW, FI, SC
  opts.seed = 4;
  opts.enable_checker = true;
  harness::Cluster cluster(opts);

  auto shared_keys = std::make_shared<wl::FixedKeyWorkload>(/*shared=*/true, 64);
  auto private_keys = std::make_shared<wl::FixedKeyWorkload>(/*shared=*/false, 64);
  for (size_t r = 0; r < 3; r++) {
    harness::ClientSpec spec;
    spec.region = opts.site_regions[r];
    spec.workload = shared_keys;
    cluster.AddClients(spec, 8);  // conflicting half
    spec.workload = private_keys;
    cluster.AddClients(spec, 8);  // commuting half
  }

  std::printf("3-site ATLAS deployment (f=1): TW, FI, SC; 16 clients per site.\n");
  std::printf("t=10s: TW is halted. t=13s: survivors suspect TW, recover its in-flight "
              "commands,\nand TW's clients reconnect to the closest alive site.\n\n");
  cluster.ScheduleCrash(/*site=*/0, /*at=*/10 * common::kSecond,
                        /*detection_timeout=*/3 * common::kSecond);
  cluster.Start();
  cluster.RunFor(25 * common::kSecond);

  std::printf("%-6s %10s %10s %10s %10s\n", "t(s)", "TW", "FI", "SC", "total");
  for (int sec = 0; sec < 25; sec += 1) {
    double tw = cluster.SiteThroughput(0).RatePerSecond(sec * common::kSecond);
    double fi = cluster.SiteThroughput(1).RatePerSecond(sec * common::kSecond);
    double sc = cluster.SiteThroughput(2).RatePerSecond(sec * common::kSecond);
    std::printf("%-6d %10.0f %10.0f %10.0f %10.0f %s\n", sec, tw, fi, sc, tw + fi + sc,
                sec == 10 ? "  <- TW crashes" : (sec == 13 ? "  <- detected" : ""));
  }

  // Recovery accounting.
  uint64_t recoveries = 0;
  uint64_t noops = 0;
  for (uint32_t p = 1; p < 3; p++) {
    recoveries += cluster.engine(p).stats().recoveries_started;
    noops += cluster.engine(p).stats().noops_committed;
  }
  std::printf("\nrecoveries started by survivors: %llu (noOp replacements: %llu)\n",
              static_cast<unsigned long long>(recoveries),
              static_cast<unsigned long long>(noops));

  auto result = cluster.Finish(/*abort_on_error=*/false);
  std::printf("history check after drain: %s\n", result.ok ? "OK (linearizable)"
                                                           : result.Describe().c_str());
  return result.ok ? 0 : 1;
}
