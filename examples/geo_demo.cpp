// Geo-replication demo: deploys Atlas and its competitors over the 13-site WAN model
// (the paper's planet-scale scenario) and prints a per-protocol latency comparison for
// clients in three different continents — the "same quality of service wherever the
// client is" claim of §1.
//
//   $ ./build/examples/geo_demo
#include <cstdio>
#include <memory>

#include "src/harness/cluster.h"
#include "src/harness/topology.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

namespace {

// Mean latency for a single client at `label`, on a fresh 13-site deployment of the
// given protocol (one cluster per data point keeps the measurements independent).
double RunSingleClient(harness::Protocol protocol, uint32_t f, const char* label) {
  harness::ClusterOptions opts;
  opts.protocol = protocol;
  opts.f = f;
  opts.site_regions = sim::ScaleOutSites(13);
  opts.seed = 99;
  harness::Cluster cluster(opts);
  harness::ClientSpec spec;
  spec.region = sim::RegionIndexByLabel(label);
  spec.workload = std::make_shared<wl::MicroWorkload>(0.02, 100);
  spec.max_ops = 60;
  cluster.AddClients(spec, 1);
  cluster.SetMeasureWindow(0, 300 * common::kSecond);
  cluster.Start();
  cluster.RunFor(300 * common::kSecond);
  return cluster.Snapshot().latency.Mean() / 1000.0;
}

}  // namespace

int main() {
  std::printf("=== 13-site planet-scale deployment: client latency by location ===\n\n");
  std::printf("Sites: ");
  for (size_t r : sim::ScaleOutSites(13)) {
    std::printf("%s ", sim::AllRegions()[r].label);
  }
  std::printf("\n\n%-22s %10s %10s %10s\n", "protocol", "Belgium", "S.Carolina",
              "Sydney");

  struct Row {
    const char* name;
    harness::Protocol protocol;
    uint32_t f;
  };
  const Row rows[] = {
      {"ATLAS f=1", harness::Protocol::kAtlas, 1},
      {"ATLAS f=2", harness::Protocol::kAtlas, 2},
      {"EPaxos", harness::Protocol::kEPaxos, 1},
      {"FPaxos f=1 (leader)", harness::Protocol::kFPaxos, 1},
      {"Mencius", harness::Protocol::kMencius, 1},
  };
  for (const Row& row : rows) {
    std::printf("%-22s", row.name);
    for (const char* label : {"BE", "SC", "SY"}) {
      std::printf("%8.0fms ", RunSingleClient(row.protocol, row.f, label));
    }
    std::printf("\n");
  }
  std::printf("\nLeaderless ATLAS serves every region from its closest quorum; the "
              "leader-based\nprotocol is only fast near its leader, and Mencius runs "
              "at the speed of the\nslowest replica from everywhere.\n");
  return 0;
}
