// Quickstart: a 5-replica Atlas cluster on the deterministic simulator, replicating an
// in-memory key-value store. Shows the three things a user touches: engines, a
// state machine, and the executed-command callback.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/atlas.h"
#include "src/kvs/kvs.h"
#include "src/sim/simulator.h"

int main() {
  constexpr uint32_t kReplicas = 5;

  // 1. A simulated network: 25ms one-way latency between any two replicas.
  sim::Simulator::Options opts;
  opts.seed = 2020;
  sim::Simulator simulator(
      std::make_unique<sim::UniformLatency>(25 * common::kMillisecond, 0), opts);

  // 2. One Atlas engine and one KVS replica per process. f = 1: fast quorums are plain
  //    majorities and every command commits on the fast path (§3.3).
  std::vector<std::unique_ptr<atlas::AtlasEngine>> engines;
  std::vector<kvs::KvStore> stores(kReplicas);
  for (uint32_t i = 0; i < kReplicas; i++) {
    atlas::Config config;
    config.n = kReplicas;
    config.f = 1;
    engines.push_back(std::make_unique<atlas::AtlasEngine>(config));
    simulator.AddEngine(engines.back().get());
  }

  // 3. Executed commands are applied to each replica's local state machine.
  simulator.SetExecutedHandler([&](common::ProcessId p, const common::Dot& dot,
                                   const smr::Command& cmd) {
    std::string result = stores[p].Apply(cmd);
    if (p == 0) {  // print the coordinator-side view once
      std::printf("  [%6.1fms] replica %u executed %-18s -> \"%s\"\n",
                  static_cast<double>(simulator.Now()) / 1000.0, p,
                  cmd.ToString().c_str(), result.c_str());
    }
  });
  simulator.SetCommittedHandler([&](common::ProcessId p, const common::Dot& dot,
                                    const smr::Command& cmd, bool fast) {
    if (p == dot.proc) {
      std::printf("  [%6.1fms] %s committed via the %s path\n",
                  static_cast<double>(simulator.Now()) / 1000.0,
                  cmd.ToString().c_str(), fast ? "fast" : "slow");
    }
  });
  simulator.Start();

  std::printf("submitting commands at different replicas...\n");
  simulator.Submit(0, smr::MakePut(/*client=*/1, /*seq=*/1, "melon", "sweet"));
  simulator.Submit(2, smr::MakePut(/*client=*/2, /*seq=*/1, "lemon", "sour"));
  // Two conflicting writes submitted concurrently at opposite ends of the world:
  simulator.Submit(1, smr::MakePut(/*client=*/3, /*seq=*/1, "melon", "ripe"));
  simulator.RunUntilIdle();

  simulator.Submit(4, smr::MakeGet(/*client=*/4, /*seq=*/1, "melon"));
  simulator.RunUntilIdle();

  // All replicas converged.
  std::printf("\nreplica state digests: ");
  for (uint32_t i = 0; i < kReplicas; i++) {
    std::printf("%016llx ", static_cast<unsigned long long>(stores[i].StateDigest()));
  }
  std::printf("\n(all equal: the conflicting writes executed in the same order "
              "everywhere)\n");
  return 0;
}
