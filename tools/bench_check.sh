#!/bin/sh
# bench_check.sh — gate BENCH_*.json against the ROADMAP perf floors and the
# checked-in baselines in bench/results/.
#
# Two classes of metric, because the JSONs mix host-independent numbers with
# raw wall-clock ones:
#
#   * ratio-class (names matching _vs_ / speedup / parity / balance): shard
#     speedups come from deterministic simulated time and the exec/wallclock
#     ratios divide out the host, so they are comparable across machines.
#     These FAIL when they drop more than the tolerance below the checked-in
#     baseline, and additionally must clear the ROADMAP floors hard-coded
#     below.
#   * absolute-class (ns_per_op / items_per_sec of individual points): raw
#     wall-clock, meaningless to diff at 10% across different hosts. These
#     WARN by default and only fail under ATLAS_BENCH_STRICT=1 (same-host
#     trend tracking).
#
# Usage: bench_check.sh [-c current_dir] [-b baseline_dir] [-t tolerance]
#   current_dir   where the fresh BENCH_*.json live (default: build)
#   baseline_dir  checked-in baselines          (default: bench/results)
#   tolerance     allowed fractional drop       (default: 0.10)
# Exit: 0 clean, 1 any ratio-class regression or floor violation.
set -u

CUR=build
BASE=bench/results
TOL=0.10
while getopts "c:b:t:" opt; do
  case "$opt" in
    c) CUR=$OPTARG ;;
    b) BASE=$OPTARG ;;
    t) TOL=$OPTARG ;;
    *) echo "usage: $0 [-c current_dir] [-b baseline_dir] [-t tolerance]" >&2
       exit 2 ;;
  esac
done

STRICT=${ATLAS_BENCH_STRICT:-0}
FAILS=0
WARNS=0

# jget FILE NAME FIELD -> prints the numeric field of the named row, or "".
jget() {
  awk -v name="$2" -v field="$3" '
    index($0, "\"name\": \"" name "\"") {
      if (match($0, "\"" field "\": *-?[0-9.eE+-]+")) {
        v = substr($0, RSTART, RLENGTH)
        sub(/.*: */, "", v)
        print v
      }
      exit
    }' "$1"
}

# cmp_ge VALUE FLOOR -> 0 if VALUE >= FLOOR
cmp_ge() {
  awk -v a="$1" -v b="$2" 'BEGIN { exit (a + 0 >= b + 0) ? 0 : 1 }'
}

fail() { echo "FAIL: $*"; FAILS=$((FAILS + 1)); }
warn() { echo "warn: $*"; WARNS=$((WARNS + 1)); }

# --- ROADMAP floors (host-independent; tolerance already folded in) --------
floor_check() { # file row field floor label
  f=$CUR/$1
  [ -f "$f" ] || { warn "$1 missing from $CUR ($5 not checked)"; return; }
  v=$(jget "$f" "$2" "$3")
  [ -n "$v" ] || { fail "$1: row '$2' missing"; return; }
  if cmp_ge "$v" "$4"; then
    echo "ok:   $5 = $v (floor $4)"
  else
    fail "$5 = $v below floor $4"
  fi
}

slack() { # FLOOR -> FLOOR * (1 - TOL)
  awk -v x="$1" -v t="$TOL" 'BEGIN { printf "%.4f", x * (1 - t) }'
}

echo "== bench_check: floors (tolerance $TOL) =="
floor_check BENCH_shard.json shard_sweep_speedup_p4_vs_p1 items_per_sec \
  "$(slack 1.5)" "fig_shard P=4 vs P=1 speedup"
floor_check BENCH_shard.json shard_sweep_speedup_p8_vs_p2 items_per_sec \
  "$(slack 1.0)" "fig_shard P=8 vs P=2 speedup"
if [ -f "$CUR/BENCH_exec.json" ]; then
  floor_check BENCH_exec.json exec_digest_parity items_per_sec 1 \
    "fig_exec digest parity"
  # The exec gate is core-count dependent (see bench/fig_exec.cc): >= 2x on
  # parallel hardware, >= 0.5x (handoff-and-timeslice overhead bound) when lanes time-slice
  # one core. The JSON records which regime produced it.
  cores=$(jget "$CUR/BENCH_exec.json" exec_host_cores items_per_sec)
  if [ -n "$cores" ] && cmp_ge "$cores" 4; then
    exec_floor=$(slack 2.0)
  else
    exec_floor=$(slack 0.5)
  fi
  floor_check BENCH_exec.json exec_low_e4_vs_inline items_per_sec \
    "$exec_floor" "fig_exec low-conflict E=4 vs inline (cores=${cores:-?})"
else
  warn "BENCH_exec.json missing from $CUR (exec floors not checked)"
fi
if [ -f "$CUR/BENCH_wallclock.json" ]; then
  for proto in atlas epaxos mencius; do
    floor_check BENCH_wallclock.json "wallclock_${proto}_p8_vs_p2" \
      items_per_sec "$(slack 1.0)" "fig_wallclock $proto P=8 vs P=2"
  done
  # Durability overhead (commit log + batched fsync at P=4): raw filesystem
  # behaviour varies too much across hosts/runners to gate, so this is
  # warn-only — it flags when persistence costs more than half the inline
  # throughput but never fails the check.
  for proto in atlas epaxos mencius; do
    v=$(jget "$CUR/BENCH_wallclock.json" \
      "wallclock_${proto}_p4_durable_vs_inline" items_per_sec)
    [ -n "$v" ] || continue
    if cmp_ge "$v" 0.5; then
      echo "ok:   fig_wallclock $proto P=4 durable vs inline = ${v}x (warn floor 0.5x)"
    else
      warn "fig_wallclock $proto P=4 durable vs inline = ${v}x (< 0.5x; fsync overhead, warn-only)"
    fi
  done
fi

# --- baseline diff ---------------------------------------------------------
echo "== bench_check: baseline diff vs $BASE =="
for tag in micro shard exec; do
  cf=$CUR/BENCH_$tag.json
  bf=$BASE/BENCH_$tag.json
  [ -f "$cf" ] || { warn "BENCH_$tag.json missing from $CUR"; continue; }
  [ -f "$bf" ] || { warn "BENCH_$tag.json has no baseline in $BASE"; continue; }
  # Every row name in the baseline, with its fields, checked in the current.
  grep -o '"name": "[^"]*"' "$bf" | sed 's/"name": "//; s/"$//' |
  while IFS= read -r row; do
    for field in ns_per_op items_per_sec; do
      b=$(jget "$bf" "$row" "$field")
      c=$(jget "$cf" "$row" "$field")
      [ -n "$b" ] && [ -n "$c" ] || continue
      # Zero rows carry no signal for this field.
      awk -v b="$b" 'BEGIN { exit (b + 0 > 0) ? 0 : 1 }' || continue
      # Regression = worse than baseline by > TOL in the field's bad
      # direction (ns up, rates down).
      if [ "$field" = "ns_per_op" ]; then
        bad=$(awk -v b="$b" -v c="$c" -v t="$TOL" \
          'BEGIN { print (c > b * (1 + t)) ? 1 : 0 }')
      else
        bad=$(awk -v b="$b" -v c="$c" -v t="$TOL" \
          'BEGIN { print (c < b * (1 - t)) ? 1 : 0 }')
      fi
      [ "$bad" = 1 ] || continue
      case "$row" in
        exec_low_e4_vs_inline)
          # Core-regime dependent (>=2x on parallel hardware, overhead-bound
          # when lanes time-slice): floor-checked above with the recorded core
          # count; diffing it against a baseline from a different host class
          # would flake, so it only warns here.
          echo "warnrow $tag/$row $field: $c vs baseline $b (core-regime dependent; floor-gated above)" ;;
        *_vs_*|*speedup*|*parity*|*balance*)
          echo "FAILROW $tag/$row $field: $c vs baseline $b" ;;
        *cores*) ;;  # provenance, not a metric
        *)
          if [ "$STRICT" = 1 ]; then
            echo "FAILROW $tag/$row $field: $c vs baseline $b (strict)"
          else
            echo "warnrow $tag/$row $field: $c vs baseline $b (wall-clock, cross-host)"
          fi ;;
      esac
    done
  done > /tmp/bench_check_rows.$$
  # The while ran in a subshell; fold its findings into our counters.
  if [ -s /tmp/bench_check_rows.$$ ]; then
    while IFS= read -r line; do
      case "$line" in
        FAILROW*) fail "${line#FAILROW }" ;;
        warnrow*) warn "${line#warnrow }" ;;
      esac
    done < /tmp/bench_check_rows.$$
  else
    echo "ok:   BENCH_$tag.json: no regressions beyond $TOL vs baseline"
  fi
  rm -f /tmp/bench_check_rows.$$
done

echo "== bench_check: $FAILS failure(s), $WARNS warning(s) =="
[ "$FAILS" = 0 ] || exit 1
exit 0
