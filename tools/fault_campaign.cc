// Seeded fault-campaign driver: sweeps scenario packs x seeds x protocols x
// partition counts, evaluates each pack's acceptance gates, and prints a one-line
// verdict per run plus a copy-pasteable rerun command for every failure.
//
//   fault_campaign --list
//   fault_campaign --pack kill_one_replica --seed 7 --protocol atlas --partitions 4
//   fault_campaign --pack all --seeds 5 --protocol all
//   fault_campaign --smoke        # CI preset: 2 seeds x all packs x atlas, P=1
//
// Exit status is nonzero iff any run failed a gate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/fault/campaign.h"
#include "src/fault/scenario.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fault_campaign [--pack NAME|all] [--seed S] [--seeds N]\n"
      "                      [--protocol atlas|epaxos|mencius|all] [--partitions P]\n"
      "                      [--data-dir DIR] [--smoke] [--list]\n"
      "  --seed S       first seed (default 1)\n"
      "  --seeds N      sweep N consecutive seeds starting at --seed (default 1)\n"
      "  --data-dir DIR persist commit logs + snapshots per tuple under DIR;\n"
      "                 scheduled restarts recover from disk (see src/dur)\n"
      "  --smoke        CI preset: all packs, 2 seeds, atlas, P=1\n"
      "  --list         print the scenario packs and exit\n");
}

struct Args {
  std::string pack = "all";
  uint64_t seed = 1;
  uint64_t seeds = 1;
  std::string protocol = "atlas";
  uint32_t partitions = 1;
  std::string data_dir;
  bool list = false;
};

bool Parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--pack") {
      const char* v = next("--pack");
      if (v == nullptr) return false;
      args.pack = v;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--seeds") {
      const char* v = next("--seeds");
      if (v == nullptr) return false;
      args.seeds = std::strtoull(v, nullptr, 10);
    } else if (a == "--protocol") {
      const char* v = next("--protocol");
      if (v == nullptr) return false;
      args.protocol = v;
    } else if (a == "--partitions") {
      const char* v = next("--partitions");
      if (v == nullptr) return false;
      args.partitions = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--data-dir") {
      const char* v = next("--data-dir");
      if (v == nullptr) return false;
      args.data_dir = v;
    } else if (a == "--smoke") {
      args.pack = "all";
      args.seeds = 2;
      args.protocol = "atlas";
      args.partitions = 1;
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--help" || a == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      PrintUsage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) {
    return 2;
  }

  if (args.list) {
    for (const fault::Scenario& s : fault::AllScenarios()) {
      std::printf("%-28s %s\n", s.name.c_str(), s.description.c_str());
    }
    return 0;
  }

  std::vector<std::string> packs;
  if (args.pack == "all") {
    for (const fault::Scenario& s : fault::AllScenarios()) {
      packs.push_back(s.name);
    }
  } else {
    if (fault::FindScenario(args.pack) == nullptr) {
      std::fprintf(stderr, "unknown pack: %s (try --list)\n", args.pack.c_str());
      return 2;
    }
    packs.push_back(args.pack);
  }

  std::vector<harness::Protocol> protocols;
  if (args.protocol == "all") {
    protocols = {harness::Protocol::kAtlas, harness::Protocol::kEPaxos,
                 harness::Protocol::kMencius};
  } else {
    auto p = fault::ParseProtocol(args.protocol);
    if (!p.has_value()) {
      std::fprintf(stderr, "unknown protocol: %s\n", args.protocol.c_str());
      return 2;
    }
    protocols.push_back(*p);
  }

  int failures = 0;
  int runs = 0;
  std::vector<std::string> reruns;
  for (const std::string& pack : packs) {
    for (harness::Protocol protocol : protocols) {
      for (uint64_t s = 0; s < args.seeds; s++) {
        fault::RunSpec spec;
        spec.pack = pack;
        spec.seed = args.seed + s;
        spec.protocol = protocol;
        spec.partitions = args.partitions;
        spec.data_dir = args.data_dir;
        fault::RunResult r = fault::RunScenario(spec);
        runs++;
        std::printf(
            "%s pack=%s protocol=%s partitions=%u seed=%llu completed=%llu "
            "gave_up=%llu injected=%llu/%llu sched=%016llx store=%016llx\n",
            r.pass ? "PASS" : "FAIL", pack.c_str(),
            fault::ProtocolFlagName(protocol), spec.partitions,
            static_cast<unsigned long long>(spec.seed),
            static_cast<unsigned long long>(r.completed),
            static_cast<unsigned long long>(r.gave_up),
            static_cast<unsigned long long>(r.drops.injected + r.drops.corrupted),
            static_cast<unsigned long long>(r.inject.sends_seen),
            static_cast<unsigned long long>(r.schedule_digest),
            static_cast<unsigned long long>(r.store_digest));
        if (!r.pass) {
          failures++;
          for (const std::string& f : r.failures) {
            std::printf("     gate: %s\n", f.c_str());
          }
          reruns.push_back(fault::RerunCommand(spec));
        }
      }
    }
  }

  std::printf("%d/%d runs passed\n", runs - failures, runs);
  if (!reruns.empty()) {
    std::printf("rerun failing seeds with:\n");
    for (const std::string& cmd : reruns) {
      std::printf("  %s\n", cmd.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
